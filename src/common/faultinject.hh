/**
 * @file
 * Deterministic, seedable fault injection for the experiment harness.
 *
 * The harness declares *named injection points* at the places a
 * production sweep actually fails — trace file reads, outcome-store
 * I/O and locking, the worker job body, the cache fill path — and a
 * process-wide FaultRegistry decides, deterministically, which hits
 * of which point should fail. The spec comes from the IPCP_FAULTS
 * environment variable (or FaultRegistry::configure in tests):
 *
 *   IPCP_FAULTS := clause (',' clause)*
 *   clause      := point ['~' match] '@' from ['-' to | '+'] ['=' action]
 *   action      := 'fail' | 'fatal' | 'sleep:' millis
 *
 *   point   one of: trace.read store.read store.write store.flock
 *                   job.body cache.fill ckpt.write ckpt.read
 *                   queue.claim queue.heartbeat queue.reclaim
 *   match   substring filter on the point's context string (a job
 *           key, a file path, a cache name); only matching hits are
 *           counted and failed
 *   from/to 1-based hit numbers: "@3" fires on exactly the 3rd
 *           matching hit, "@3-5" on hits 3..5, "@2+" on every hit
 *           from the 2nd
 *   action  'fail'  inject a transient (retry-eligible) error
 *                   [default]
 *           'fatal' inject a permanent error (never retried)
 *           'sleep' delay the caller, injecting latency rather than
 *                   failure (exercises the runner watchdog)
 *
 * Examples:
 *   IPCP_FAULTS='job.body~605.mcf@1'         first mcf job fails once
 *   IPCP_FAULTS='store.write@1-2,store.flock@1'
 *   IPCP_FAULTS='cache.fill@100=fatal'
 *
 * Hits are counted per clause under a mutex, so firing is
 * deterministic for serial execution and for any point whose hits
 * are ordered (per-job points keyed by context). All entry points
 * are thread-safe; when no spec is configured the per-hit cost is
 * one relaxed atomic load.
 */

#ifndef BOUQUET_COMMON_FAULTINJECT_HH
#define BOUQUET_COMMON_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/errors.hh"

namespace bouquet
{

/** The named injection points the harness declares. */
namespace faults
{
inline constexpr const char *kTraceRead = "trace.read";
inline constexpr const char *kStoreRead = "store.read";
inline constexpr const char *kStoreWrite = "store.write";
inline constexpr const char *kStoreFlock = "store.flock";
inline constexpr const char *kJobBody = "job.body";
inline constexpr const char *kCacheFill = "cache.fill";
inline constexpr const char *kCkptWrite = "ckpt.write";
inline constexpr const char *kCkptRead = "ckpt.read";
inline constexpr const char *kQueueClaim = "queue.claim";
inline constexpr const char *kQueueHeartbeat = "queue.heartbeat";
inline constexpr const char *kQueueReclaim = "queue.reclaim";
} // namespace faults

/** One parsed IPCP_FAULTS clause plus its firing counters. */
struct FaultClause
{
    enum class Action { Fail, Fatal, Sleep };

    std::string point;
    std::string match;           //!< context substring ("" = any)
    std::uint64_t from = 1;      //!< first firing hit (1-based)
    std::uint64_t to = 1;        //!< last firing hit (inclusive)
    Action action = Action::Fail;
    unsigned sleepMs = 0;

    std::uint64_t hits = 0;      //!< matching hits observed
    std::uint64_t fired = 0;     //!< hits that injected
};

/** Parse a spec string into clauses (exposed for tests/tools). */
Status parseFaultSpec(const std::string &spec,
                      std::vector<FaultClause> &out);

/**
 * The process-wide fault table. The singleton configures itself from
 * IPCP_FAULTS on first use; tests call configure()/clear() to drive
 * it explicitly (replacing any environment spec).
 */
class FaultRegistry
{
  public:
    static FaultRegistry &instance();

    /** Replace all clauses and reset counters. */
    Status configure(const std::string &spec);

    /** Drop all clauses (disables injection). */
    void clear();

    /** True if any clause is loaded (cheap, lock-free). */
    bool active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /**
     * Record a hit of `point` with `context` and return the error to
     * inject, if any. Sleep-action clauses block the caller here and
     * return nothing. Thread-safe.
     */
    std::optional<Error> check(std::string_view point,
                               std::string_view context);

    /** Total injected failures at `point` ("" = all points). */
    std::uint64_t firedCount(std::string_view point = {}) const;

    /** Total recorded (matching) hits at `point` ("" = all). */
    std::uint64_t hitCount(std::string_view point = {}) const;

  private:
    FaultRegistry();  //!< reads IPCP_FAULTS

    mutable std::mutex mutex_;
    std::vector<FaultClause> clauses_;
    std::atomic<bool> active_{false};
};

/**
 * Declare an injection point in Result/Status-based code: returns
 * the error to propagate, or nothing. No-op (one relaxed load) when
 * no faults are configured.
 */
inline std::optional<Error>
faultCheck(const char *point, std::string_view context = {})
{
    FaultRegistry &reg = FaultRegistry::instance();
    if (!reg.active())
        return std::nullopt;
    return reg.check(point, context);
}

/**
 * Declare an injection point in exception-based code (job bodies,
 * simulation internals): throws ErrorException when a fault fires.
 */
inline void
faultPoint(const char *point, std::string_view context = {})
{
    if (auto err = faultCheck(point, context))
        throw ErrorException(std::move(*err));
}

} // namespace bouquet

#endif // BOUQUET_COMMON_FAULTINJECT_HH
