/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and randomized frame allocation.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that a given (workload, seed) pair reproduces the same
 * access stream bit-for-bit across runs and platforms. std::mt19937 is
 * avoided because its state is large and its distributions are not
 * guaranteed identical across standard library implementations.
 */

#ifndef BOUQUET_COMMON_RNG_HH
#define BOUQUET_COMMON_RNG_HH

#include <cassert>
#include <cstdint>

namespace bouquet
{

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Fast, high-quality, and fully specified so results are portable.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound > 0);
        // Lemire's multiply-shift rejection-free reduction is fine here:
        // workload synthesis does not need exact uniformity at 2^-64.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Checkpoint the full 256-bit generator state. */
    template <typename IO>
    void
    serialize(IO &io)
    {
        for (auto &word : state_)
            io.io(word);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace bouquet

#endif // BOUQUET_COMMON_RNG_HH
