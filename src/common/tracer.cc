#include "tracer.hh"

#include <array>
#include <ostream>

#include "json.hh"

namespace bouquet
{

namespace
{

/** Viewer name + up-to-three argument labels per event kind. */
struct EventInfo
{
    const char *name;
    const char *argA;
    const char *argB;
    const char *argC;
};

constexpr std::array<EventInfo, 10> kEventInfo = {{
    {"pf_issue", "line", "class", nullptr},
    {"pf_fill", "line", "class", nullptr},
    {"pf_useful", "line", "class", nullptr},
    {"pf_late", "line", "class", nullptr},
    {"mshr_stall", "line", nullptr, nullptr},
    {"throttle_epoch", "class", "degree", "accuracy_x1000"},
    {"nl_gate", "enabled", nullptr, nullptr},
    {"class_shift", "ip", "from", "to"},
    {"checkpoint_save", "cycle", nullptr, nullptr},
    {"warmup_end", nullptr, nullptr, nullptr},
}};

} // namespace

EventTracer::EventTracer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity)
{
}

int
EventTracer::registerTrack(std::string name)
{
    tracks_.push_back(std::move(name));
    return static_cast<int>(tracks_.size() - 1);
}

std::vector<EventTracer::Record>
EventTracer::events() const
{
    std::vector<Record> out;
    out.reserve(count_);
    // Oldest record: head_ when the ring has wrapped, 0 otherwise.
    const std::size_t start = count_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
EventTracer::writeChromeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("otherData");
    w.beginObject();
    w.key("recorded");
    w.value(recorded());
    w.key("dropped");
    w.value(dropped());
    w.endObject();
    w.key("traceEvents");
    w.beginArray();
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        w.beginObject();
        w.key("ph");
        w.value("M");
        w.key("pid");
        w.value(std::uint64_t{0});
        w.key("tid");
        w.value(static_cast<std::uint64_t>(t));
        w.key("name");
        w.value("thread_name");
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(tracks_[t]);
        w.endObject();
        w.endObject();
    }
    for (const Record &r : events()) {
        const EventInfo &info =
            kEventInfo[static_cast<std::size_t>(r.kind)];
        w.beginObject();
        w.key("ph");
        w.value("i");
        w.key("s");
        w.value("t");
        w.key("pid");
        w.value(std::uint64_t{0});
        w.key("tid");
        w.value(static_cast<std::uint64_t>(r.track));
        w.key("ts");
        w.value(r.cycle);
        w.key("name");
        w.value(info.name);
        w.key("args");
        w.beginObject();
        if (info.argA != nullptr) {
            w.key(info.argA);
            w.value(r.a);
        }
        if (info.argB != nullptr) {
            w.key(info.argB);
            w.value(static_cast<std::uint64_t>(r.b));
        }
        if (info.argC != nullptr) {
            w.key(info.argC);
            w.value(static_cast<std::uint64_t>(r.c));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace bouquet
