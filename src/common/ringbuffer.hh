/**
 * @file
 * A fixed-capacity FIFO ring buffer for the simulator's hot queues
 * (cache read/write/prefetch queues, core pending-issue, outbound
 * writebacks). Unlike std::deque it never allocates per element: one
 * power-of-two backing array is reserved up front and reused, so the
 * steady-state push/pop path is two index updates and a copy.
 *
 * Capacity grows by doubling only if a push exceeds the reserved
 * size — a safety valve for the one queue (outbound writebacks) whose
 * bound is configuration-dependent rather than configured; with the
 * recommended reservations growth never happens after construction.
 */

#ifndef BOUQUET_COMMON_RINGBUFFER_HH
#define BOUQUET_COMMON_RINGBUFFER_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace bouquet
{

template <typename T>
class RingBuffer
{
  public:
    /** Reserve space for at least `capacity` elements (rounded up to a
     *  power of two; 0 defers allocation to the first push). */
    explicit RingBuffer(std::size_t capacity = 0)
    {
        if (capacity > 0)
            buf_.resize(roundUpPow2(capacity));
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }
    bool full() const { return count_ == buf_.size(); }

    T &front()
    {
        assert(count_ > 0);
        return buf_[head_];
    }

    const T &front() const
    {
        assert(count_ > 0);
        return buf_[head_];
    }

    T &back()
    {
        assert(count_ > 0);
        return buf_[wrap(head_ + count_ - 1)];
    }

    const T &back() const
    {
        assert(count_ > 0);
        return buf_[wrap(head_ + count_ - 1)];
    }

    /** i-th element from the front (0 = front). */
    T &operator[](std::size_t i)
    {
        assert(i < count_);
        return buf_[wrap(head_ + i)];
    }

    const T &operator[](std::size_t i) const
    {
        assert(i < count_);
        return buf_[wrap(head_ + i)];
    }

    void push_back(const T &v)
    {
        if (full())
            grow();
        buf_[wrap(head_ + count_)] = v;
        ++count_;
    }

    void push_back(T &&v)
    {
        if (full())
            grow();
        buf_[wrap(head_ + count_)] = std::move(v);
        ++count_;
    }

    void pop_front()
    {
        assert(count_ > 0);
        buf_[head_] = T{};  // release resources held by the slot
        head_ = wrap(head_ + 1);
        --count_;
    }

    void clear()
    {
        while (count_ > 0)
            pop_front();
        head_ = 0;
    }

    /**
     * Checkpoint: capacity and the live elements in FIFO order. On
     * restore the buffer is rebuilt with head at slot 0; the FIFO
     * contents (all that is observable) are preserved exactly.
     */
    template <typename IO>
    void
    serialize(IO &io)
    {
        std::uint64_t cap = buf_.size();
        std::uint64_t n = count_;
        io.io(cap);
        io.io(n);
        if (io.reading()) {
            if ((cap & (cap - 1)) != 0 || n > cap)
                io.failCorrupt("ring buffer with non-power-of-two "
                               "capacity or overfull count");
            buf_.clear();
            buf_.resize(static_cast<std::size_t>(cap));
            head_ = 0;
            count_ = static_cast<std::size_t>(n);
        }
        for (std::size_t i = 0; i < count_; ++i)
            io.io(buf_[wrap(head_ + i)]);
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

    void
    grow()
    {
        const std::size_t new_cap =
            buf_.empty() ? 8 : buf_.size() * 2;
        std::vector<T> bigger(new_cap);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = std::move(buf_[wrap(head_ + i)]);
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * A ring buffer whose elements each carry a cycle stamp, kept in a
 * separate parallel ring (structure-of-arrays). The hot questions the
 * simulator asks of its queues — "is the head ready?" in the
 * queue-processing loops and "when does the head become ready?" in
 * nextWakeup — touch only the small contiguous stamp array instead of
 * dragging whole MemRequest payloads through the data cache.
 */
template <typename T>
class StampedRing
{
  public:
    explicit StampedRing(std::size_t capacity = 0)
        : items_(capacity), stamps_(capacity)
    {}

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    T &front() { return items_.front(); }
    const T &front() const { return items_.front(); }

    /** Cycle stamp of the front element. */
    Cycle frontStamp() const { return stamps_.front(); }

    T &operator[](std::size_t i) { return items_[i]; }
    const T &operator[](std::size_t i) const { return items_[i]; }
    Cycle stampAt(std::size_t i) const { return stamps_[i]; }

    void
    push_back(const T &v, Cycle stamp)
    {
        items_.push_back(v);
        stamps_.push_back(stamp);
    }

    void
    pop_front()
    {
        items_.pop_front();
        stamps_.pop_front();
    }

    void
    clear()
    {
        items_.clear();
        stamps_.clear();
    }

    template <typename IO>
    void
    serialize(IO &io)
    {
        items_.serialize(io);
        stamps_.serialize(io);
        if (io.reading() && items_.size() != stamps_.size())
            io.failCorrupt(
                "stamped ring payload/stamp sizes disagree");
    }

  private:
    RingBuffer<T> items_;
    RingBuffer<Cycle> stamps_;
};

} // namespace bouquet

#endif // BOUQUET_COMMON_RINGBUFFER_HH
