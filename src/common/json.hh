/**
 * @file
 * A small streaming JSON writer with correct string escaping.
 *
 * Every JSON emitter in the repo (report tables, stats export, trace
 * events) routes through this class so escaping bugs are fixed in one
 * place. The writer tracks the container stack and inserts commas
 * itself; callers only describe structure:
 *
 *     JsonWriter w(os, JsonWriter::Style::Pretty);
 *     w.beginObject();
 *     w.key("ipc");
 *     w.value(1.25);
 *     w.endObject();
 *
 * Doubles round-trip (shortest representation that parses back to the
 * same value); NaN and infinities — which are not representable in
 * JSON — are emitted as null.
 */

#ifndef BOUQUET_COMMON_JSON_HH
#define BOUQUET_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace bouquet
{

/** Streaming JSON writer; see the file comment. */
class JsonWriter
{
  public:
    enum class Style
    {
        Compact,  //!< no whitespace at all
        Pretty,   //!< 2-space indent, one member per line
    };

    explicit JsonWriter(std::ostream &os, Style style = Style::Compact)
        : os_(os), style_(style)
    {
    }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member key; must be followed by exactly one value. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(double d);
    void value(std::uint64_t u);
    void value(std::int64_t i);
    void value(int i) { value(static_cast<std::int64_t>(i)); }
    void value(unsigned u) { value(static_cast<std::uint64_t>(u)); }
    void null();

    /**
     * Emit a pre-formatted token verbatim (after comma/indent
     * bookkeeping). The caller guarantees it is valid JSON — used by
     * the report writer to keep its historical %.6g number formatting.
     */
    void rawValue(std::string_view token);

    /** Escape a string for embedding between JSON double quotes. */
    static std::string escape(std::string_view s);

  private:
    struct Frame
    {
        bool array = false;
        bool keyPending = false;  //!< object: key emitted, value due
        std::size_t count = 0;
    };

    /** Comma/newline/indent bookkeeping before a key or array value. */
    void preElement();
    /** Bookkeeping before a value (handles the key-pending case). */
    void preValue();
    void indent();
    void writeEscaped(std::string_view s);

    std::ostream &os_;
    Style style_;
    std::vector<Frame> stack_;
};

} // namespace bouquet

#endif // BOUQUET_COMMON_JSON_HH
