/**
 * @file
 * Lightweight simulator-throughput instrumentation: a wall-clock timer
 * and the per-run counter bundle (cycles simulated, ticks actually
 * executed, cycles skipped by the event-skipping loop, instructions)
 * that `bench_throughput` and `ipcp_sim --perf` report from.
 *
 * Everything here is host-side measurement; nothing feeds back into
 * simulated state, so perf counters never affect simulated outcomes.
 */

#ifndef BOUQUET_COMMON_PERFCOUNT_HH
#define BOUQUET_COMMON_PERFCOUNT_HH

#include <chrono>
#include <cstdint>

namespace bouquet
{

/**
 * Counters of one simulation run (or one System lifetime). Ticks are
 * tick rounds actually executed by System::run; skipped cycles are
 * quiescent cycles the event-skipping loop jumped over. Their sum is
 * the number of simulated cycles.
 */
struct PerfCounters
{
    std::uint64_t ticksExecuted = 0;
    std::uint64_t skippedCycles = 0;

    std::uint64_t cyclesSimulated() const
    {
        return ticksExecuted + skippedCycles;
    }

    /** Fraction of simulated cycles that were skipped, in [0,1]. */
    double
    skipRatio() const
    {
        const std::uint64_t total = cyclesSimulated();
        return total == 0
                   ? 0.0
                   : static_cast<double>(skippedCycles) /
                         static_cast<double>(total);
    }

    void reset() { *this = PerfCounters{}; }

    /**
     * Checkpointed so a resumed run reports totals over the whole
     * logical run, not just the post-resume slice. Host-side only:
     * excluded from resume-equivalence comparisons.
     */
    template <typename IO>
    void
    serialize(IO &io)
    {
        io.io(ticksExecuted);
        io.io(skippedCycles);
    }
};

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() : start_(clock::now()) {}

    void restart() { start_ = clock::now(); }

    /** Seconds elapsed since construction or the last restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/** Simulated kilo-instructions per wall-second (the headline metric). */
inline double
kips(std::uint64_t instructions, double seconds)
{
    return seconds > 0.0
               ? static_cast<double>(instructions) / seconds / 1e3
               : 0.0;
}

} // namespace bouquet

#endif // BOUQUET_COMMON_PERFCOUNT_HH
