/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components register named stats under dotted paths
 * (`system.core0.l1d.ipcp-l1.cs.issued`); the registry can snapshot
 * every value, reset all *observational* stats at the warmup boundary,
 * and emit the whole tree as nested JSON.
 *
 * Stats are registered as thin closures over the owning component's
 * members, so registration costs nothing on the simulation hot path —
 * values are only read at snapshot/export time.
 *
 * Two kinds matter for reset semantics:
 *  - Counter: pure observation. `resetAll()` zeroes it (via the
 *    owner's reset hook) and a post-reset snapshot must read 0.
 *  - Gauge: level or behavior-affecting state (throttle accuracy
 *    windows, table occupancy). `resetAll()` must NOT touch it —
 *    resetting stats may never change simulated behavior.
 */

#ifndef BOUQUET_COMMON_STATSINK_HH
#define BOUQUET_COMMON_STATSINK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bouquet
{

class JsonWriter;

enum class StatKind
{
    Counter,    //!< monotonic observation; reset to 0 at warmup end
    Gauge,      //!< level / behavior state; never touched by resetAll
    Histogram,  //!< bucketed observation; buckets reset at warmup end
};

/** One sampled stat value (see StatKind for which fields are live). */
struct StatValue
{
    StatKind kind = StatKind::Counter;
    std::uint64_t u = 0;                 //!< Counter value
    double d = 0.0;                      //!< Gauge value
    std::vector<std::uint64_t> buckets;  //!< Histogram contents
};

/**
 * The registry proper. Owned by System; components never see it
 * directly — they get a StatGroup naming their subtree.
 */
class StatRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using HistogramFn = std::function<std::vector<std::uint64_t>()>;
    using ResetFn = std::function<void()>;

    void addCounter(std::string path, CounterFn fn);
    void addGauge(std::string path, GaugeFn fn);
    void addHistogram(std::string path, HistogramFn fn);

    /**
     * Register a reset action run by resetAll(). Owners register one
     * hook that zeroes every Counter/Histogram they exported.
     */
    void addResetHook(ResetFn fn);

    /** Sample every registered stat. Keys are the dotted paths. */
    std::map<std::string, StatValue> snapshot() const;

    /** Run every reset hook (the warmup boundary). */
    void resetAll();

    /** Drop all registrations (before a re-register pass). */
    void clear();

    std::size_t size() const { return entries_.size(); }

    /**
     * Emit the tree as one nested JSON object: dotted path segments
     * become nested objects, the final segment the member key.
     */
    void writeJson(JsonWriter &w) const;

  private:
    struct Entry
    {
        std::string path;
        StatKind kind;
        CounterFn counter;
        GaugeFn gauge;
        HistogramFn histogram;
    };

    std::vector<Entry> entries_;
    std::vector<ResetFn> resetHooks_;
};

/**
 * A named subtree handle passed to components during registration.
 * Cheap to copy; `child()` descends one level.
 */
class StatGroup
{
  public:
    StatGroup(StatRegistry &reg, std::string prefix)
        : reg_(&reg), prefix_(std::move(prefix))
    {
    }

    StatGroup
    child(std::string_view name) const
    {
        return StatGroup(*reg_, join(name));
    }

    void
    counter(std::string_view name, StatRegistry::CounterFn fn) const
    {
        reg_->addCounter(join(name), std::move(fn));
    }

    /** Convenience: export a member variable by reference. */
    void
    counter(std::string_view name, const std::uint64_t &v) const
    {
        reg_->addCounter(join(name), [&v] { return v; });
    }

    void
    gauge(std::string_view name, StatRegistry::GaugeFn fn) const
    {
        reg_->addGauge(join(name), std::move(fn));
    }

    void
    histogram(std::string_view name, StatRegistry::HistogramFn fn) const
    {
        reg_->addHistogram(join(name), std::move(fn));
    }

    void
    onReset(StatRegistry::ResetFn fn) const
    {
        reg_->addResetHook(std::move(fn));
    }

    const std::string &prefix() const { return prefix_; }

  private:
    std::string
    join(std::string_view name) const
    {
        if (prefix_.empty())
            return std::string(name);
        std::string out = prefix_;
        out += '.';
        out += name;
        return out;
    }

    StatRegistry *reg_;
    std::string prefix_;
};

} // namespace bouquet

#endif // BOUQUET_COMMON_STATSINK_HH
