/**
 * @file
 * Saturating counter templates used by predictors throughout the
 * prefetcher bouquet (confidence counters, stream-direction counters,
 * accuracy throttles).
 */

#ifndef BOUQUET_COMMON_SAT_COUNTER_HH
#define BOUQUET_COMMON_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace bouquet
{

/**
 * An n-bit unsigned saturating counter.
 *
 * The counter saturates at [0, 2^Bits - 1]. Used for the 2-bit
 * confidence counters of the CS and CPLX classes and the dense-count of
 * the RST.
 */
template <unsigned Bits>
class SatCounter
{
  public:
    static_assert(Bits >= 1 && Bits <= 31, "counter width out of range");

    /** Maximum representable value. */
    static constexpr std::uint32_t max() { return (1u << Bits) - 1; }

    SatCounter() = default;

    /** Construct with an initial value (clamped to the maximum). */
    explicit SatCounter(std::uint32_t initial)
        : value_(initial > max() ? max() : initial)
    {}

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max())
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** Set to an explicit value (clamped). */
    void
    set(std::uint32_t v)
    {
        value_ = v > max() ? max() : v;
    }

    /** Current value. */
    std::uint32_t value() const { return value_; }

    /** True when the counter has reached its maximum. */
    bool saturated() const { return value_ == max(); }

    /** True when the most significant bit is set (>= half range). */
    bool msb() const { return value_ >= (1u << (Bits - 1)); }

    template <typename IO>
    void
    serialize(IO &io)
    {
        io.io(value_);
    }

  private:
    std::uint32_t value_ = 0;
};

/**
 * An n-bit up/down counter biased around its midpoint.
 *
 * Models the pos/neg direction counter of the Region Stream Table: it
 * is initialised to 2^(Bits-1) and the most significant bit gives the
 * current direction (1 = positive).
 */
template <unsigned Bits>
class BiasedCounter
{
  public:
    static_assert(Bits >= 2 && Bits <= 31, "counter width out of range");

    static constexpr std::uint32_t max() { return (1u << Bits) - 1; }
    static constexpr std::uint32_t midpoint() { return 1u << (Bits - 1); }

    BiasedCounter() : value_(midpoint()) {}

    /** Move toward positive, saturating. */
    void
    up()
    {
        if (value_ < max())
            ++value_;
    }

    /** Move toward negative, saturating. */
    void
    down()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to the midpoint (unknown direction). */
    void reset() { value_ = midpoint(); }

    /** True when the counter currently indicates the positive direction. */
    bool positive() const { return value_ >= midpoint(); }

    std::uint32_t value() const { return value_; }

    template <typename IO>
    void
    serialize(IO &io)
    {
        io.io(value_);
    }

  private:
    std::uint32_t value_;
};

/**
 * A signed saturating integer counter with run-time bounds, used by
 * perceptron weights in the PPF baseline.
 */
class SignedSatCounter
{
  public:
    SignedSatCounter(int min_v, int max_v, int initial = 0)
        : min_(min_v), max_(max_v), value_(initial)
    {
        assert(min_ <= initial && initial <= max_);
    }

    void
    add(int delta)
    {
        value_ += delta;
        if (value_ > max_)
            value_ = max_;
        if (value_ < min_)
            value_ = min_;
    }

    int value() const { return value_; }

    /** Bounds are configuration; only the value is checkpointed. */
    template <typename IO>
    void
    serialize(IO &io)
    {
        io.io(value_);
    }

  private:
    int min_;
    int max_;
    int value_;
};

} // namespace bouquet

#endif // BOUQUET_COMMON_SAT_COUNTER_HH
