/**
 * @file
 * Lightweight error vocabulary shared across the harness: an error
 * code enum, an `Error` value (code + message + transience), and a
 * `Result<T>` / `Status` pair so I/O and lookup layers can report
 * failures without throwing or exiting. Call sites that must stay
 * exception-based (legacy constructors, factory wrappers) convert an
 * Error into an ErrorException, which preserves the code/transience
 * so the Runner's per-job capture can classify it for retry.
 */

#ifndef BOUQUET_COMMON_ERRORS_HH
#define BOUQUET_COMMON_ERRORS_HH

#include <cassert>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace bouquet
{

/** What went wrong, machine-readably. */
enum class Errc
{
    ok,
    io,            //!< open/read/write/rename failure
    bad_magic,     //!< file is not the expected format at all
    bad_version,   //!< right format family, unsupported version
    truncated,     //!< file shorter than its header claims
    oversized,     //!< file longer than its header claims
    empty,         //!< structurally valid but holds no payload
    unknown_name,  //!< lookup by name found nothing
    corrupt,       //!< checksum / structural validation failed
    lock_failed,   //!< advisory file lock could not be taken
    injected,      //!< raised by the fault-injection layer
    timeout,       //!< watchdog wall-clock limit exceeded
    failed,        //!< unclassified failure
};

inline const char *
errcName(Errc code)
{
    switch (code) {
      case Errc::ok: return "ok";
      case Errc::io: return "io";
      case Errc::bad_magic: return "bad-magic";
      case Errc::bad_version: return "bad-version";
      case Errc::truncated: return "truncated";
      case Errc::oversized: return "oversized";
      case Errc::empty: return "empty";
      case Errc::unknown_name: return "unknown-name";
      case Errc::corrupt: return "corrupt";
      case Errc::lock_failed: return "lock-failed";
      case Errc::injected: return "injected";
      case Errc::timeout: return "timeout";
      case Errc::failed: return "failed";
    }
    return "unknown";
}

/**
 * One failure. `transient` marks faults a retry may clear (I/O
 * flakes, injected transients); permanent errors (unknown names,
 * corrupt formats) must not be retried.
 */
struct Error
{
    Errc code = Errc::failed;
    std::string message;
    bool transient = false;
};

inline Error
makeError(Errc code, std::string message, bool transient = false)
{
    return Error{code, std::move(message), transient};
}

/**
 * Exception wrapper carrying an Error through code that still
 * unwinds (constructors, deep simulation paths). Derives
 * std::runtime_error so legacy catch sites keep working.
 */
class ErrorException : public std::runtime_error
{
  public:
    explicit ErrorException(Error e)
        : std::runtime_error(e.message), error_(std::move(e))
    {
    }

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/** Success-or-Error for operations with no payload. */
class [[nodiscard]] Status
{
  public:
    Status() = default;  //!< success
    Status(Error e) : error_(std::move(e)), ok_(false) {}

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    const Error &error() const
    {
        assert(!ok_);
        return error_;
    }

  private:
    Error error_;
    bool ok_ = true;
};

/** Value-or-Error. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Converting value constructor (e.g. unique_ptr<Derived>). */
    template <typename U,
              typename = std::enable_if_t<
                  std::is_convertible_v<U &&, T> &&
                  !std::is_same_v<std::decay_t<U>, Error> &&
                  !std::is_same_v<std::decay_t<U>, Result>>>
    Result(U &&value)
        : v_(std::in_place_index<0>, T(std::forward<U>(value)))
    {
    }

    Result(Error e) : v_(std::in_place_index<1>, std::move(e)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    const T &value() const &
    {
        assert(ok());
        return std::get<T>(v_);
    }

    T &value() &
    {
        assert(ok());
        return std::get<T>(v_);
    }

    /** Move the payload out (consumes the result). */
    T take()
    {
        assert(ok());
        return std::move(std::get<T>(v_));
    }

    const Error &error() const
    {
        assert(!ok());
        return std::get<Error>(v_);
    }

    Status status() const { return ok() ? Status() : Status(error()); }

  private:
    std::variant<T, Error> v_;
};

} // namespace bouquet

#endif // BOUQUET_COMMON_ERRORS_HH
