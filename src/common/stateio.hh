/**
 * @file
 * Checkpoint serialization for the simulator: a single `StateIO`
 * visitor that both writes and reads a flat little-endian byte image
 * of the machine, plus the versioned/checksummed checkpoint file
 * container around it.
 *
 * Every stateful component implements
 *
 *   void serialize(StateIO &io);        // or a template member
 *
 * listing its fields with `io.io(field)`. The same member function
 * runs in both directions — in Write mode it appends bytes, in Read
 * mode it consumes them — so the save and load field order can never
 * drift apart. Read-mode failures (short buffer, section-tag
 * mismatch, illegal index) throw ErrorException with
 * Errc::truncated/Errc::corrupt; the checkpoint entry points catch
 * and convert to Status.
 *
 * Pointers to response targets (`MemRequest::requester`) are encoded
 * as indices into a registry filled by `registerTarget()` calls made
 * in the same fixed order on save and load. See DESIGN.md §5d.
 */

#ifndef BOUQUET_COMMON_STATEIO_HH
#define BOUQUET_COMMON_STATEIO_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/errors.hh"

namespace bouquet
{

class RespTarget;

/** Current checkpoint payload/container format version.
 *  v2: CacheStats gained per-class issued/late arrays; IPCP L1/L2
 *  serialize per-class issue counters and the epoch-history ring. */
inline constexpr std::uint32_t kCheckpointVersion = 3;

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-based. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** FNV-1a over a string, chainable through `h`. */
inline std::uint64_t
fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** FNV-1a over one integer (little-endian bytes), chainable. */
inline std::uint64_t
fnv1a(std::uint64_t v, std::uint64_t h)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= static_cast<std::uint8_t>(v >> (8 * i));
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * The bidirectional serialization visitor. One instance is either a
 * writer (appends to an internal buffer) or a reader (consumes a
 * caller-supplied payload).
 */
class StateIO
{
  public:
    static StateIO
    writer()
    {
        return StateIO(Mode::Write, {});
    }

    static StateIO
    reader(std::vector<std::uint8_t> payload)
    {
        return StateIO(Mode::Read, std::move(payload));
    }

    bool writing() const { return mode_ == Mode::Write; }
    bool reading() const { return mode_ == Mode::Read; }

    /** Bytes not yet consumed (Read mode). */
    std::size_t remaining() const { return buf_.size() - pos_; }

    /** Move the written image out (Write mode). */
    std::vector<std::uint8_t>
    takeBuffer()
    {
        return std::move(buf_);
    }

    /**
     * Write (or verify) a short section tag. A mismatch on read means
     * the payload is structurally off the rails; failing at the tag
     * names the component instead of misparsing its fields.
     */
    void
    beginSection(const char *name)
    {
        std::string tag = name;
        if (writing()) {
            io(tag);
            return;
        }
        std::string found;
        io(found);
        if (found != name)
            fail(Errc::corrupt, "checkpoint section mismatch: expected '" +
                                    tag + "', found '" + found + "'");
    }

    /** Raise Errc::corrupt from a component's serialize() member. */
    [[noreturn]] static void
    failCorrupt(std::string message)
    {
        fail(Errc::corrupt, std::move(message));
    }

    /** Read mode: every payload byte must have been consumed. */
    void
    expectEnd() const
    {
        if (reading() && remaining() != 0)
            fail(Errc::corrupt,
                 "checkpoint payload has " + std::to_string(remaining()) +
                     " trailing bytes");
    }

    /**
     * Register a response target. Save and load must make identical
     * registerTarget() call sequences before serializing any
     * MemRequest, so the index written by one run resolves to the
     * equivalent object in the other.
     */
    void
    registerTarget(RespTarget *t)
    {
        targets_.push_back(t);
    }

    /** Serialize a response-target pointer as a registry index. */
    void
    ioTarget(RespTarget *&t)
    {
        std::uint32_t idx = kNullTarget;
        if (writing()) {
            if (t != nullptr) {
                idx = 0;
                while (idx < targets_.size() && targets_[idx] != t)
                    ++idx;
                if (idx == targets_.size())
                    fail(Errc::corrupt,
                         "checkpoint save hit an unregistered response "
                         "target");
            }
            io(idx);
            return;
        }
        io(idx);
        if (idx == kNullTarget) {
            t = nullptr;
            return;
        }
        if (idx >= targets_.size())
            fail(Errc::corrupt, "checkpoint response-target index " +
                                    std::to_string(idx) + " out of range");
        t = targets_[idx];
    }

    /**
     * Generic scalar/struct dispatch: enums go through their
     * underlying integer, floating point through its bit pattern,
     * integers as fixed-width little-endian, anything else via its
     * own serialize() member.
     */
    template <typename T>
    void
    io(T &v)
    {
        if constexpr (std::is_enum_v<T>) {
            auto u = static_cast<std::underlying_type_t<T>>(v);
            io(u);
            v = static_cast<T>(u);
        } else if constexpr (std::is_floating_point_v<T>) {
            static_assert(sizeof(T) == sizeof(std::uint64_t) ||
                          sizeof(T) == sizeof(std::uint32_t));
            using Bits =
                std::conditional_t<sizeof(T) == sizeof(std::uint64_t),
                                   std::uint64_t, std::uint32_t>;
            Bits bits = 0;
            if (writing())
                std::memcpy(&bits, &v, sizeof(bits));
            io(bits);
            if (reading())
                std::memcpy(&v, &bits, sizeof(bits));
        } else if constexpr (std::is_integral_v<T>) {
            ioInt(v);
        } else {
            v.serialize(*this);
        }
    }

    void
    io(bool &v)
    {
        std::uint8_t b = v ? 1 : 0;
        ioInt(b);
        v = b != 0;
    }

    void
    io(std::string &v)
    {
        std::uint32_t n = static_cast<std::uint32_t>(v.size());
        io(n);
        if (writing()) {
            buf_.insert(buf_.end(), v.begin(), v.end());
            return;
        }
        need(n);
        v.assign(reinterpret_cast<const char *>(buf_.data() + pos_), n);
        pos_ += n;
    }

    void
    io(std::vector<bool> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (reading()) {
            guardCount(n);
            v.assign(static_cast<std::size_t>(n), false);
        }
        for (std::size_t i = 0; i < v.size(); ++i) {
            bool b = v[i];
            io(b);
            v[i] = b;
        }
    }

    template <typename T>
    void
    io(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (reading()) {
            guardCount(n);
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (T &e : v)
            io(e);
    }

    template <typename T>
    void
    io(std::deque<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (reading()) {
            guardCount(n);
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (T &e : v)
            io(e);
    }

    template <typename T, std::size_t N>
    void
    io(std::array<T, N> &v)
    {
        for (T &e : v)
            io(e);
    }

  private:
    enum class Mode
    {
        Write,
        Read
    };

    static constexpr std::uint32_t kNullTarget = 0xFFFFFFFFu;

    StateIO(Mode mode, std::vector<std::uint8_t> buf)
        : mode_(mode), buf_(std::move(buf))
    {
    }

    [[noreturn]] static void
    fail(Errc code, std::string message)
    {
        throw ErrorException(makeError(code, std::move(message)));
    }

    void
    need(std::size_t n) const
    {
        if (remaining() < n)
            fail(Errc::truncated,
                 "checkpoint payload truncated: wanted " +
                     std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
    }

    /**
     * An element count larger than the bytes left cannot be honest
     * (every element serializes at least one byte); rejecting it here
     * keeps a fuzzed length field from forcing a huge allocation.
     */
    void
    guardCount(std::uint64_t n) const
    {
        if (n > remaining())
            fail(Errc::corrupt,
                 "checkpoint element count " + std::to_string(n) +
                     " exceeds remaining payload");
    }

    template <typename T>
    void
    ioInt(T &v)
    {
        using U = std::make_unsigned_t<T>;
        if (writing()) {
            const U u = static_cast<U>(v);
            for (std::size_t i = 0; i < sizeof(U); ++i)
                buf_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
            return;
        }
        need(sizeof(U));
        U u = 0;
        for (std::size_t i = 0; i < sizeof(U); ++i)
            u |= static_cast<U>(buf_[pos_ + i]) << (8 * i);
        pos_ += sizeof(U);
        v = static_cast<T>(u);
    }

    Mode mode_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::vector<RespTarget *> targets_;
};

/**
 * Write `payload` to `path` inside the checkpoint container:
 * magic + version + build id + config hash + size + CRC, written to
 * a temp file and atomically renamed into place so a crash mid-write
 * never leaves a half-valid checkpoint. Fault point: `ckpt.write`.
 */
Status writeCheckpointFile(const std::string &path,
                           std::uint64_t config_hash,
                           const std::vector<std::uint8_t> &payload);

/**
 * Read and validate a checkpoint container: magic, version, payload
 * size, CRC, and the config hash against `config_hash`. Returns the
 * payload on success. Fault point: `ckpt.read`.
 */
Result<std::vector<std::uint8_t>>
readCheckpointFile(const std::string &path, std::uint64_t config_hash);

} // namespace bouquet

#endif // BOUQUET_COMMON_STATEIO_HH
