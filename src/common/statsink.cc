#include "statsink.hh"

#include <algorithm>
#include <cassert>

#include "json.hh"

namespace bouquet
{

void
StatRegistry::addCounter(std::string path, CounterFn fn)
{
    Entry e;
    e.path = std::move(path);
    e.kind = StatKind::Counter;
    e.counter = std::move(fn);
    entries_.push_back(std::move(e));
}

void
StatRegistry::addGauge(std::string path, GaugeFn fn)
{
    Entry e;
    e.path = std::move(path);
    e.kind = StatKind::Gauge;
    e.gauge = std::move(fn);
    entries_.push_back(std::move(e));
}

void
StatRegistry::addHistogram(std::string path, HistogramFn fn)
{
    Entry e;
    e.path = std::move(path);
    e.kind = StatKind::Histogram;
    e.histogram = std::move(fn);
    entries_.push_back(std::move(e));
}

void
StatRegistry::addResetHook(ResetFn fn)
{
    resetHooks_.push_back(std::move(fn));
}

std::map<std::string, StatValue>
StatRegistry::snapshot() const
{
    std::map<std::string, StatValue> out;
    for (const Entry &e : entries_) {
        StatValue v;
        v.kind = e.kind;
        switch (e.kind) {
          case StatKind::Counter:
            v.u = e.counter();
            break;
          case StatKind::Gauge:
            v.d = e.gauge();
            break;
          case StatKind::Histogram:
            v.buckets = e.histogram();
            break;
        }
        assert(out.find(e.path) == out.end() &&
               "duplicate stat path registered");
        out.emplace(e.path, std::move(v));
    }
    return out;
}

void
StatRegistry::resetAll()
{
    for (const ResetFn &fn : resetHooks_)
        fn();
}

void
StatRegistry::clear()
{
    entries_.clear();
    resetHooks_.clear();
}

namespace
{

std::vector<std::string_view>
splitPath(std::string_view path)
{
    std::vector<std::string_view> segs;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string_view::npos) {
            segs.push_back(path.substr(start));
            return segs;
        }
        segs.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
}

} // namespace

void
StatRegistry::writeJson(JsonWriter &w) const
{
    // Sort segment-wise so siblings group: "a.b" sorts next to "a.c"
    // even when a plain string compare would interleave "a-x" between
    // them (the '.' separator is not the smallest character).
    struct Sorted
    {
        std::vector<std::string_view> segs;
        const Entry *e;
    };
    std::vector<Sorted> sorted;
    sorted.reserve(entries_.size());
    for (const Entry &e : entries_)
        sorted.push_back(Sorted{splitPath(e.path), &e});
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Sorted &a, const Sorted &b) {
                         return a.segs < b.segs;
                     });

    w.beginObject();
    // The group path (all segments but the leaf) of the currently open
    // nested objects.
    std::vector<std::string_view> open;
    for (const Sorted &s : sorted) {
        const std::size_t groups = s.segs.size() - 1;
        std::size_t common = 0;
        while (common < open.size() && common < groups &&
               open[common] == s.segs[common])
            ++common;
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        while (open.size() < groups) {
            w.key(s.segs[open.size()]);
            w.beginObject();
            open.push_back(s.segs[open.size()]);
        }
        w.key(s.segs.back());
        const Entry &e = *s.e;
        switch (e.kind) {
          case StatKind::Counter:
            w.value(e.counter());
            break;
          case StatKind::Gauge:
            w.value(e.gauge());
            break;
          case StatKind::Histogram: {
            w.beginArray();
            for (std::uint64_t b : e.histogram())
                w.value(b);
            w.endArray();
            break;
          }
        }
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
}

} // namespace bouquet
