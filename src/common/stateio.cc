#include "common/stateio.hh"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/faultinject.hh"

namespace bouquet
{

namespace
{

/**
 * Container header, fixed 36 bytes, little-endian. The build id that
 * follows is informational (recorded for post-mortems, never
 * validated): a checkpoint is portable across builds as long as the
 * format version and config hash agree.
 */
constexpr char kMagic[8] = {'I', 'P', 'C', 'P', 'C', 'K', 'P', 'T'};
constexpr std::size_t kHeaderBytes = 36;

const char *
buildId()
{
    return __DATE__ " " __TIME__;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

struct CrcTable
{
    std::uint32_t entries[256];

    CrcTable()
    {
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[n] = c;
        }
    }
};

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const CrcTable table;
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

Status
writeCheckpointFile(const std::string &path, std::uint64_t config_hash,
                    const std::vector<std::uint8_t> &payload)
{
    if (auto err = faultCheck(faults::kCkptWrite, path))
        return *err;

    const std::string build = buildId();
    std::vector<std::uint8_t> image;
    image.reserve(kHeaderBytes + build.size() + payload.size());
    image.insert(image.end(), kMagic, kMagic + sizeof(kMagic));
    putU32(image, kCheckpointVersion);
    putU32(image, static_cast<std::uint32_t>(build.size()));
    putU64(image, config_hash);
    putU64(image, payload.size());
    putU32(image, crc32(payload.data(), payload.size()));
    image.insert(image.end(), build.begin(), build.end());
    image.insert(image.end(), payload.begin(), payload.end());

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return makeError(Errc::io, "cannot open " + tmp + " for writing",
                         true);
    bool ok = std::fwrite(image.data(), 1, image.size(), f) ==
              image.size();
    ok = std::fflush(f) == 0 && ok;
    if (ok)
        ok = ::fsync(::fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return makeError(Errc::io, "short write to " + tmp, true);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return makeError(Errc::io,
                         "cannot rename " + tmp + " to " + path, true);
    }
    return Status();
}

Result<std::vector<std::uint8_t>>
readCheckpointFile(const std::string &path, std::uint64_t config_hash)
{
    if (auto err = faultCheck(faults::kCkptRead, path))
        return *err;

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return makeError(Errc::io, "cannot open checkpoint " + path);

    std::vector<std::uint8_t> image;
    std::uint8_t chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        image.insert(image.end(), chunk, chunk + got);
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err)
        return makeError(Errc::io, "read error on checkpoint " + path,
                         true);

    if (image.size() < sizeof(kMagic) ||
        std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0)
        return makeError(Errc::bad_magic,
                         path + " is not a checkpoint file");
    if (image.size() < kHeaderBytes)
        return makeError(Errc::truncated,
                         "checkpoint " + path + " has a short header");

    const std::uint32_t version = getU32(image.data() + 8);
    const std::uint32_t build_len = getU32(image.data() + 12);
    const std::uint64_t file_hash = getU64(image.data() + 16);
    const std::uint64_t payload_size = getU64(image.data() + 24);
    const std::uint32_t payload_crc = getU32(image.data() + 32);

    if (version != kCheckpointVersion)
        return makeError(Errc::bad_version,
                         "checkpoint " + path + " is format version " +
                             std::to_string(version) + ", expected " +
                             std::to_string(kCheckpointVersion));

    const std::uint64_t expect =
        kHeaderBytes + std::uint64_t{build_len} + payload_size;
    if (image.size() < expect)
        return makeError(Errc::truncated,
                         "checkpoint " + path + " is truncated: " +
                             std::to_string(image.size()) + " of " +
                             std::to_string(expect) + " bytes");
    if (image.size() > expect)
        return makeError(Errc::oversized,
                         "checkpoint " + path + " has trailing bytes");

    if (file_hash != config_hash)
        return makeError(Errc::corrupt,
                         "checkpoint " + path +
                             " was written for a different system "
                             "configuration");

    const std::uint8_t *payload =
        image.data() + kHeaderBytes + build_len;
    if (crc32(payload, payload_size) != payload_crc)
        return makeError(Errc::corrupt,
                         "checkpoint " + path + " failed CRC validation");

    return std::vector<std::uint8_t>(payload, payload + payload_size);
}

} // namespace bouquet
