#include "common/faultinject.hh"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

namespace bouquet
{

namespace
{

/** Parse a base-10 number; false on empty/garbage/overflow. */
bool
parseU64(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t next = value * 10 + (c - '0');
        if (next < value)
            return false;
        value = next;
    }
    out = value;
    return true;
}

Status
parseClause(std::string_view text, FaultClause &clause)
{
    auto fail = [&](const std::string &why) {
        return Status(makeError(
            Errc::failed,
            "bad IPCP_FAULTS clause '" + std::string(text) + "': " + why));
    };

    // Split off the '=action' suffix first.
    std::string_view body = text;
    std::string_view action;
    if (const std::size_t eq = body.find('='); eq != std::string_view::npos) {
        action = body.substr(eq + 1);
        body = body.substr(0, eq);
    }

    const std::size_t at = body.find('@');
    if (at == std::string_view::npos)
        return fail("missing '@hit'");

    std::string_view name = body.substr(0, at);
    std::string_view range = body.substr(at + 1);
    if (const std::size_t tilde = name.find('~');
        tilde != std::string_view::npos) {
        clause.match = std::string(name.substr(tilde + 1));
        name = name.substr(0, tilde);
    }
    if (name.empty())
        return fail("empty point name");
    clause.point = std::string(name);

    if (range.empty())
        return fail("empty hit range");
    if (range.back() == '+') {
        if (!parseU64(range.substr(0, range.size() - 1), clause.from))
            return fail("bad open range");
        clause.to = UINT64_MAX;
    } else if (const std::size_t dash = range.find('-');
               dash != std::string_view::npos) {
        if (!parseU64(range.substr(0, dash), clause.from) ||
            !parseU64(range.substr(dash + 1), clause.to))
            return fail("bad hit range");
    } else {
        if (!parseU64(range, clause.from))
            return fail("bad hit number");
        clause.to = clause.from;
    }
    if (clause.from == 0 || clause.to < clause.from)
        return fail("hits are 1-based and from <= to");

    if (action.empty() || action == "fail") {
        clause.action = FaultClause::Action::Fail;
    } else if (action == "fatal") {
        clause.action = FaultClause::Action::Fatal;
    } else if (action.rfind("sleep:", 0) == 0) {
        std::uint64_t ms = 0;
        if (!parseU64(action.substr(6), ms) || ms > 60'000)
            return fail("bad sleep milliseconds");
        clause.action = FaultClause::Action::Sleep;
        clause.sleepMs = static_cast<unsigned>(ms);
    } else {
        return fail("unknown action '" + std::string(action) + "'");
    }
    return Status();
}

} // namespace

Status
parseFaultSpec(const std::string &spec, std::vector<FaultClause> &out)
{
    out.clear();
    for (std::size_t pos = 0; pos <= spec.size();) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        if (end > pos) {
            FaultClause clause;
            if (Status s = parseClause(
                    std::string_view(spec).substr(pos, end - pos), clause);
                !s.ok()) {
                out.clear();
                return s;
            }
            out.push_back(std::move(clause));
        }
        pos = end + 1;
    }
    return Status();
}

FaultRegistry::FaultRegistry()
{
    if (const char *env = std::getenv("IPCP_FAULTS");
        env != nullptr && *env != '\0') {
        if (Status s = configure(env); !s.ok())
            std::cerr << "[faults] ignoring IPCP_FAULTS: "
                      << s.error().message << "\n";
    }
}

FaultRegistry &
FaultRegistry::instance()
{
    static FaultRegistry registry;
    return registry;
}

Status
FaultRegistry::configure(const std::string &spec)
{
    std::vector<FaultClause> clauses;
    if (Status s = parseFaultSpec(spec, clauses); !s.ok())
        return s;
    std::lock_guard<std::mutex> lock(mutex_);
    clauses_ = std::move(clauses);
    active_.store(!clauses_.empty(), std::memory_order_relaxed);
    return Status();
}

void
FaultRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    clauses_.clear();
    active_.store(false, std::memory_order_relaxed);
}

std::optional<Error>
FaultRegistry::check(std::string_view point, std::string_view context)
{
    std::optional<Error> err;
    unsigned sleep_ms = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (FaultClause &c : clauses_) {
            if (c.point != point)
                continue;
            if (!c.match.empty() &&
                context.find(c.match) == std::string_view::npos)
                continue;
            ++c.hits;
            if (c.hits < c.from || c.hits > c.to)
                continue;
            ++c.fired;
            if (c.action == FaultClause::Action::Sleep) {
                sleep_ms += c.sleepMs;
                continue;
            }
            if (!err) {
                std::string what = "injected fault at " +
                                   std::string(point);
                if (!context.empty())
                    what += " (" + std::string(context) + ")";
                err = makeError(Errc::injected, std::move(what),
                                c.action == FaultClause::Action::Fail);
            }
        }
    }
    // Sleep outside the lock so latency injection never serializes
    // unrelated points.
    if (sleep_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return err;
}

std::uint64_t
FaultRegistry::firedCount(std::string_view point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const FaultClause &c : clauses_) {
        if (point.empty() || c.point == point)
            total += c.fired;
    }
    return total;
}

std::uint64_t
FaultRegistry::hitCount(std::string_view point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const FaultClause &c : clauses_) {
        if (point.empty() || c.point == point)
            total += c.hits;
    }
    return total;
}

} // namespace bouquet
