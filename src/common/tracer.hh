/**
 * @file
 * Opt-in bounded ring-buffer trace of simulation events, emitted as
 * Chrome `trace_event` JSON (loadable in Perfetto / chrome://tracing).
 *
 * Recording is a couple of stores into a preallocated ring; when the
 * ring is full the oldest events are overwritten (the tail of a run is
 * usually what matters). When tracing is off, components hold a null
 * `EventTracer*` and every record site is a single-branch guard — the
 * hot loop pays one predictable-untaken branch.
 *
 * Timestamps are simulated cycles reported as microseconds (1 cycle =
 * 1 us in the viewer); tracks (`tid`s) are registered per component so
 * Perfetto shows one named row per cache/core.
 */

#ifndef BOUQUET_COMMON_TRACER_HH
#define BOUQUET_COMMON_TRACER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bouquet
{

/** What happened. Keep in sync with `kEventInfo` in tracer.cc. */
enum class TraceEventKind : std::uint8_t
{
    PfIssue = 0,     //!< prefetch left the PQ toward memory
    PfFill,          //!< prefetched line filled into the cache
    PfUseful,        //!< demand hit on a prefetched line
    PfLate,          //!< demand merged into an in-flight prefetch MSHR
    MshrStall,       //!< read queue head blocked on a full MSHR
    ThrottleEpoch,   //!< IPCP per-class accuracy epoch closed
    NlGate,          //!< IPCP tentative-NL MPKI gate flipped
    ClassShift,      //!< an IP's IPCP classification changed
    CheckpointSave,  //!< periodic checkpoint written
    WarmupEnd,       //!< warmup boundary: statistics reset
};

/** Bounded, overwriting event recorder. */
class EventTracer
{
  public:
    /** One recorded event; meaning of a/b/c depends on the kind. */
    struct Record
    {
        std::uint64_t cycle = 0;
        std::uint64_t a = 0;
        std::uint32_t b = 0;
        std::uint32_t c = 0;
        std::uint16_t track = 0;
        TraceEventKind kind = TraceEventKind::PfIssue;
    };

    explicit EventTracer(std::size_t capacity);

    /**
     * Name a track (one viewer row, e.g. "core0.l1d"). Returns the
     * track id to pass to record().
     */
    int registerTrack(std::string name);

    void
    record(TraceEventKind kind, int track, std::uint64_t cycle,
           std::uint64_t a = 0, std::uint32_t b = 0, std::uint32_t c = 0)
    {
        Record &r = ring_[head_];
        r.cycle = cycle;
        r.a = a;
        r.b = b;
        r.c = c;
        r.track = static_cast<std::uint16_t>(track);
        r.kind = kind;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (count_ < ring_.size())
            ++count_;
        ++recorded_;
    }

    std::size_t capacity() const { return ring_.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return count_; }
    /** Events ever recorded (dropped = recorded - size). */
    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const { return recorded_ - count_; }

    const std::vector<std::string> &tracks() const { return tracks_; }

    /** Oldest-first copy of the ring contents (tests/export). */
    std::vector<Record> events() const;

    /** Emit the whole trace as Chrome trace_event JSON. */
    void writeChromeJson(std::ostream &os) const;

  private:
    std::vector<Record> ring_;
    std::size_t head_ = 0;   //!< next write slot
    std::size_t count_ = 0;  //!< live records
    std::uint64_t recorded_ = 0;
    std::vector<std::string> tracks_;
};

} // namespace bouquet

#endif // BOUQUET_COMMON_TRACER_HH
