#include "stats.hh"

#include <cmath>
#include <numeric>

namespace bouquet
{

double
MeanAccumulator::arithmeticMean() const
{
    if (values_.empty())
        return 0.0;
    const double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
    return sum / static_cast<double>(values_.size());
}

double
MeanAccumulator::geometricMean() const
{
    if (values_.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values_)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values_.size()));
}

std::uint64_t
SmallHistogram::total() const
{
    return std::accumulate(counts_.begin(), counts_.end(),
                           std::uint64_t{0});
}

void
SmallHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

} // namespace bouquet
