#include "stats.hh"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace bouquet
{

double
MeanAccumulator::arithmeticMean() const
{
    if (values_.empty())
        return 0.0;
    const double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
    return sum / static_cast<double>(values_.size());
}

double
MeanAccumulator::geometricMean() const
{
    if (values_.empty())
        return 0.0;
    if (nonPositive_ > 0 && !warned_) {
        std::fprintf(stderr,
                     "warning: geometric mean skipping %zu non-positive "
                     "observation(s) of %zu\n",
                     nonPositive_, values_.size());
        warned_ = true;
    }
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values_) {
        if (v <= 0.0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

std::uint64_t
SmallHistogram::total() const
{
    return std::accumulate(counts_.begin(), counts_.end(),
                           std::uint64_t{0});
}

void
SmallHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
}

} // namespace bouquet
